"""Batch kernels (DESIGN.md §8) and interrupt handling.

Two contracts:

* **Differential**: the columnar kernel path must be *bit-identical* to
  the per-event scalar path — same races, same counts, same peak
  footprint, same per-variable metadata (last-access epochs and, for
  SmartTrack, the CS-list slots the lazy derivation repairs) — across
  randomized workloads, chunk sizes (down to 1), and analysis subsets,
  and the engine must auto-select the pure-Python path when numpy is
  unavailable (``REPRO_NO_NUMPY=1``).
* **Interrupt hygiene**: Ctrl-C through ``ParallelRunner`` and ``repro
  serve`` yields a partial summary with every worker reaped and every
  shared-memory segment unlinked — no leaked processes or segments.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.core.engine import MultiRunner
from repro.core.kernels import kernels_available
from repro.core.parallel import ParallelRunner
from repro.core.registry import ANALYSIS_NAMES, create
from repro.workloads import WorkloadSpec, generate_trace

EPOCH_TIERS = ["ft2", "fto-hb", "st-wcp", "st-dc", "st-wdc"]

needs_numpy = pytest.mark.skipif(
    not kernels_available(), reason="numpy unavailable or REPRO_NO_NUMPY set")


def _race_key(report):
    return [(r.index, r.site, r.var, r.tid, r.access, r.kinds)
            for r in report.races]


def _cs_snapshot(cs):
    # SmartTrack slots hold CS-entry lists; other tiers keep plain
    # dicts/ints in the same attribute names — snapshot either shape
    if cs is None:
        return None
    if isinstance(cs, dict):
        return tuple((k, _cs_snapshot(v)) for k, v in sorted(cs.items()))
    try:
        return tuple((e.lock, tuple(e.clock)) for e in cs)
    except AttributeError:
        return tuple(cs) if isinstance(cs, (list, set, tuple)) else cs


def _state_of(analysis):
    """Every piece of per-variable metadata the kernels touch."""
    state = {}
    if hasattr(analysis, "_read") and not isinstance(
            analysis._read, (dict, list)):
        state["read"] = bytes(analysis._read)
        state["write"] = bytes(analysis._write)
    if hasattr(analysis, "_read_vc"):
        state["read_vc"] = {x: tuple(vc)
                            for x, vc in analysis._read_vc.items()}
    if hasattr(analysis, "_lr"):  # SmartTrack CS-list slots
        state["lr"] = [_cs_snapshot(c) for c in analysis._lr]
        state["lw"] = [_cs_snapshot(c) for c in analysis._lw]
    if hasattr(analysis, "_eflags"):
        state["eflags"] = bytes(analysis._eflags)
    return state


def _run(trace, names, use_kernels, chunk):
    analyses = [create(name, trace) for name in names]
    result = MultiRunner(analyses, chunk_events=chunk,
                         use_kernels=use_kernels).run(trace.events)
    out = {}
    for entry, analysis in zip(result.entries, analyses):
        report = entry.report
        out[entry.name] = (_race_key(report), report.dynamic_count,
                           report.static_count,
                           report.peak_footprint_bytes,
                           _state_of(analysis))
    return out


def _spec(rng, i, max_events=6000):
    return WorkloadSpec(
        name="kernel-fuzz-{}".format(i),
        threads=rng.choice([1, 2, 4, 8]),
        events=rng.choice([300, 1500, max_events]),
        locks=rng.choice([1, 2, 8]),
        shared_vars=rng.choice([4, 16, 64]),
        local_vars=rng.choice([2, 16]),
        p_cs=rng.choice([0.0, 0.05, 0.3, 0.8]),
        read_fraction=rng.choice([0.2, 0.7, 0.9]),
        burst=rng.choice([1.0, 4.0, 8.0]),
        p_volatile=rng.choice([0.0, 0.02, 0.1]),
        predictive_races=rng.choice([0, 1, 3]),
        hb_races=rng.choice([0, 1, 2]),
        hb_single_races=rng.choice([0, 1]),
        dynamic_multiplier=rng.choice([1, 3]),
        seed=rng.randrange(10 ** 6),
    )


@needs_numpy
class TestDifferentialFuzz:
    def test_kernel_path_bit_identical(self):
        """Randomized chunk sizes (incl. 1) × analysis subsets: the
        kernel pass must equal the scalar pass bit for bit."""
        rng = random.Random(1234)
        for i in range(8):
            spec = _spec(rng, i)
            trace = generate_trace(spec)
            if rng.random() < 0.5:
                names = EPOCH_TIERS
            else:
                names = rng.sample(list(ANALYSIS_NAMES),
                                   rng.randrange(1, len(ANALYSIS_NAMES) + 1))
            chunk = 1 if i == 0 else rng.choice([2, 7, 64, 1000, 8192])
            off = _run(trace, names, False, chunk)
            on = _run(trace, names, True, chunk)
            assert on == off, \
                "spec {} chunk {} names {}".format(i, chunk, names)

    def test_vec_filter_matches_scalar_filter(self):
        """The decode-time same-epoch filter drops the same events on
        both paths (high-burst workload so drops dominate)."""
        trace = generate_trace(WorkloadSpec(
            name="filter", threads=4, events=8000, burst=12.0,
            predictive_races=1, hb_races=1, seed=3))
        off = _run(trace, EPOCH_TIERS, False, 512)
        on = _run(trace, EPOCH_TIERS, True, 512)
        assert on == off

    def test_engine_attaches_kernels(self):
        """The capability flag actually takes the batch path (guards
        against silently falling back and "passing" the differential)."""
        trace = generate_trace(WorkloadSpec(
            name="attach", threads=2, events=500, seed=5))
        runner = MultiRunner([create(n, trace) for n in EPOCH_TIERS],
                             use_kernels=True)
        session = runner.session()
        assert all(entry.kernel is not None for entry in runner.entries)
        session.feed(trace)
        session.finish()


_SUBPROCESS_SCRIPT = """
import json, sys
from repro.core.engine import MultiRunner
from repro.core.kernels import kernels_available
from repro.core.registry import create
from repro.workloads import WorkloadSpec, generate_trace

assert not kernels_available()
trace = generate_trace(WorkloadSpec(name="nonumpy", threads=4, events=4000,
                                    predictive_races=1, hb_races=1, seed=9))
names = {names!r}
runner = MultiRunner([create(n, trace) for n in names])  # auto-select
assert all(e.kernel is None for e in runner.entries)
result = runner.run(trace.events)
out = {{}}
for entry in result.entries:
    out[entry.name] = [(r.index, r.site, r.var, r.tid, r.access, r.kinds)
                       for r in entry.report.races]
print(json.dumps(out, sort_keys=True))
"""


class TestNoNumpyFallback:
    def test_env_knob_forces_pure_python_same_reports(self):
        """``REPRO_NO_NUMPY=1`` in a fresh interpreter: kernels report
        unavailable, the engine attaches none, reports match this
        process's run of the same workload."""
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        script = _SUBPROCESS_SCRIPT.format(names=EPOCH_TIERS)
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        sub = json.loads(proc.stdout)
        trace = generate_trace(WorkloadSpec(
            name="nonumpy", threads=4, events=4000, predictive_races=1,
            hb_races=1, seed=9))
        here = MultiRunner([create(n, trace) for n in EPOCH_TIERS]).run(
            trace.events)
        for entry in here.entries:
            assert [list(k) for k in _race_key(entry.report)] == \
                sub[entry.name]


# ---------------------------------------------------------------------------
# interrupt hygiene
# ---------------------------------------------------------------------------

def _shm_segments():
    if not os.path.isdir("/dev/shm"):
        return None
    return set(os.listdir("/dev/shm"))


@pytest.fixture(scope="module")
def workload():
    return generate_trace(WorkloadSpec(
        name="sigint-test", threads=4, events=12000,
        predictive_races=1, hb_races=1, seed=11))


class TestParallelInterrupt:
    def test_interrupt_mid_stream_partial_summary_no_leaks(self, workload):
        """KeyboardInterrupt in the parent's feed: the session still
        finishes with the workers' partial reports, every worker is
        reaped, and every shared-memory segment is unlinked."""
        import multiprocessing

        shm_before = _shm_segments()
        children_before = len(multiprocessing.active_children())
        cut = 6000

        def interrupted_source():
            for i, event in enumerate(workload.events):
                if i == cut:
                    raise KeyboardInterrupt
                yield event

        runner = ParallelRunner(["st-wdc", "fto-hb"], workload, workers=2,
                                chunk_events=512)
        session = runner.session()
        with pytest.raises(KeyboardInterrupt):
            for _ in session.drain(interrupted_source(), window=512):
                pass
        result = session.finish()
        assert result.ok  # analyses survived; only the feed was interrupted
        assert result.events_processed == cut
        # partial pass == serial pass over the same prefix
        serial = MultiRunner([create("st-wdc", workload)]).run(
            workload.events[:cut])
        assert _race_key(result.report("st-wdc")) == \
            _race_key(serial.report("st-wdc"))
        # no zombie workers, no leaked segments
        deadline = time.time() + 5
        while (len(multiprocessing.active_children()) > children_before
               and time.time() < deadline):
            time.sleep(0.05)
        assert len(multiprocessing.active_children()) <= children_before
        shm_after = _shm_segments()
        if shm_before is not None:
            assert shm_after - shm_before == set()

    @pytest.mark.skipif(not hasattr(signal, "SIGINT")
                        or sys.platform == "win32",
                        reason="POSIX signals required")
    def test_workers_ignore_sigint(self, workload):
        """A Ctrl-C fans out to the whole process group; workers must
        shrug it off and keep draining so the parent can collect."""
        runner = ParallelRunner(["st-wdc", "fto-hb"], workload, workers=2,
                                chunk_events=512)
        session = runner.session()
        time.sleep(0.5)  # let workers install their SIGINT handler
        for shard in session._shards:
            os.kill(shard.proc.pid, signal.SIGINT)
        for _ in session.drain(workload):
            pass
        result = session.finish()
        assert result.ok
        serial = MultiRunner([create("st-wdc", workload)]).run(workload)
        assert _race_key(result.report("st-wdc")) == \
            _race_key(serial.report("st-wdc"))


@pytest.mark.skipif(not hasattr(signal, "SIGINT") or sys.platform == "win32",
                    reason="POSIX signals required")
class TestServeInterrupt:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigint_emits_partial_summary_and_exits_130(
            self, tmp_path, workers):
        from repro.trace import dumps_trace_binary
        from repro.trace.live import connect_endpoint

        sock = str(tmp_path / "serve.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             "serve", sock, "--analysis", "st-wdc", "--emit", "jsonl",
             "--workers", str(workers), "--timeout", "30"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True)
        try:
            deadline = time.time() + 10
            while not os.path.exists(sock):
                assert time.time() < deadline, proc.stderr.read()
                assert proc.poll() is None, proc.stderr.read()
                time.sleep(0.05)
            shm_before = _shm_segments()
            from repro.workloads import figure1
            payload = dumps_trace_binary(figure1())
            conn = connect_endpoint(sock, connect_timeout=10)
            try:
                # header + all but the tail of the last event: the
                # reader stops on its own once every *declared* event
                # arrives, so hold the final one back to keep the serve
                # mid-drain when the interrupt lands
                conn.sendall(payload[:-2])
                time.sleep(1.0)  # let the drain loop consume them
                proc.send_signal(signal.SIGINT)
                out, err = proc.communicate(timeout=30)
            finally:
                conn.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, (out, err)
        assert "interrupted" in err
        summaries = [json.loads(line) for line in out.splitlines()
                     if '"summary"' in line]
        assert any(s["analysis"] == "st-wdc" for s in summaries), (out, err)
        if workers > 1:
            shm_after = _shm_segments()
            if shm_before is not None:
                assert shm_after - shm_before == set()
