"""Unit tests for the HB analyses: Unopt-HB, FT2, FTO-HB."""

import pytest

import repro
from repro.clocks.epoch import META_RESET, META_VC
from repro.core.fasttrack import FastTrack2, FTOHb
from repro.core.hb_vc import UnoptHB
from repro.clocks.vector_clock import VectorClock
from repro.trace import TraceBuilder


def build(fn):
    b = TraceBuilder()
    fn(b)
    return b.build()


def run(cls, trace, **kw):
    analysis = cls(trace, **kw)
    report = analysis.run()
    return analysis, report


@pytest.mark.parametrize("cls", [UnoptHB, FastTrack2, FTOHb])
class TestCommonHbBehaviour:
    def test_write_write_race(self, cls):
        trace = build(lambda b: b.write("T1", "x").write("T2", "x"))
        _, report = run(cls, trace)
        assert report.dynamic_count == 1
        assert report.races[0].index == 1

    def test_write_read_race(self, cls):
        trace = build(lambda b: b.write("T1", "x").read("T2", "x"))
        _, report = run(cls, trace)
        assert report.dynamic_count == 1

    def test_read_write_race(self, cls):
        trace = build(lambda b: b.read("T1", "x").write("T2", "x"))
        _, report = run(cls, trace)
        assert report.dynamic_count == 1

    def test_two_reads_no_race(self, cls):
        trace = build(lambda b: b.read("T1", "x").read("T2", "x"))
        _, report = run(cls, trace)
        assert report.dynamic_count == 0

    def test_lock_protection(self, cls):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").write("T2", "x").release("T2", "m")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 0

    def test_fork_orders(self, cls):
        trace = build(lambda b: b.write("T1", "x").fork("T1", "T2")
                      .write("T2", "x"))
        _, report = run(cls, trace)
        assert report.dynamic_count == 0

    def test_join_orders(self, cls):
        trace = build(lambda b: b.write("T2", "x").join("T1", "T2")
                      .write("T1", "x"))
        _, report = run(cls, trace)
        assert report.dynamic_count == 0

    def test_volatile_orders(self, cls):
        def body(b):
            b.write("T1", "x").volatile_write("T1", "g")
            b.volatile_read("T2", "g").write("T2", "x")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 0

    def test_volatile_read_does_not_order_later_events(self, cls):
        # The reader's *later* accesses are not ordered after the writer.
        def body(b):
            b.volatile_write("T1", "g").write("T1", "x")
            b.volatile_read("T2", "g").write("T2", "x")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 1

    def test_class_init_orders(self, cls):
        def body(b):
            b.write("T1", "x").static_init("T1", "K")
            b.static_access("T2", "K").write("T2", "x")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 0

    def test_analysis_continues_after_race(self, cls):
        def body(b):
            b.write("T1", "x").write("T2", "x")
            b.write("T1", "y").write("T2", "y")
        _, report = run(cls, build(body))
        assert report.dynamic_count == 2
        assert report.static_count == 2

    def test_same_site_counts_once_statically(self, cls):
        def body(b):
            b.write("T1", "x", site="s")
            b.write("T2", "x", site="s")
            b.acquire("T2", "m").release("T2", "m")  # new epoch
            b.write("T3", "x", site="s")
        _, report = run(cls, build(body))
        assert report.static_count == 1
        assert report.dynamic_count >= 1


class TestEpochTransitions:
    def test_ft2_read_share_creates_vector_clock(self):
        def body(b):
            b.read("T1", "x").read("T2", "x")
        analysis, _ = run(FastTrack2, build(body))
        assert analysis._read[0] == META_VC
        assert isinstance(analysis._read_vc[0], VectorClock)

    def test_ft2_ordered_reads_stay_epoch(self):
        def body(b):
            b.read("T1", "x").volatile_write("T1", "g")
            b.volatile_read("T2", "g").read("T2", "x")
        analysis, _ = run(FastTrack2, build(body))
        assert analysis._read[0] >= 0  # packed epoch, not a VC sentinel

    def test_ft2_write_shared_resets_read_metadata(self):
        def body(b):
            b.read("T1", "x").read("T2", "x")
            b.write("T1", "x")
        analysis, _ = run(FastTrack2, build(body))
        assert analysis._read[0] == META_RESET
        assert 0 not in analysis._read_vc

    def test_fto_write_updates_read_metadata(self):
        # FTO's R_x represents reads *and* writes (§4.1).
        trace = build(lambda b: b.write("T1", "x"))
        analysis, _ = run(FTOHb, trace)
        assert analysis._read[0] == analysis._write[0]

    def test_fto_owned_cases_skip_checks_but_keep_soundness(self):
        # Racy variable then same-thread re-access: the first race is
        # reported; the owned re-access is not a new dynamic race.
        def body(b):
            b.write("T1", "x")
            b.write("T2", "x")  # race
            b.acquire("T2", "m").release("T2", "m")
            b.write("T2", "x")  # owned: no new check
        _, report = run(FTOHb, build(body))
        assert report.dynamic_count == 1

    def test_same_epoch_skip(self):
        def body(b):
            for _ in range(5):
                b.read("T1", "x")
        analysis, report = run(FTOHb, build(body), collect_cases=True)
        assert report.dynamic_count == 0
        # only the first read is a non-same-epoch access
        assert analysis.case_counts.get("read_exclusive", 0) == 1

    def test_epoch_ends_at_release(self):
        def body(b):
            b.read("T1", "x")
            b.acquire("T1", "m").release("T1", "m")
            b.read("T1", "x")
        analysis, _ = run(FTOHb, build(body), collect_cases=True)
        assert analysis.case_counts.get("read_owned", 0) == 1


class TestUnoptHbInternals:
    def test_metadata_is_vector_clocks(self):
        def body(b):
            b.read("T1", "x").read("T2", "x").write("T2", "y")
        analysis, _ = run(UnoptHB, build(body))
        assert isinstance(analysis._read[0], VectorClock)
        assert isinstance(analysis._write[1], VectorClock)

    def test_footprint_grows_with_variables(self):
        small = build(lambda b: b.read("T1", "x"))
        big = build(lambda b: [b.read("T1", "v{}".format(k))
                               for k in range(50)][-1])
        a_small, _ = run(UnoptHB, small)
        a_big, _ = run(UnoptHB, big)
        assert a_big.footprint_bytes() > a_small.footprint_bytes()
