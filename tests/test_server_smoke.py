"""Concurrency smoke test: several producers share one server process.

Four producers stream binary traces into a single ``--multi`` server
concurrently (``workers=2`` so each tenant also exercises the
shared-memory analysis pool), and every tenant's summary block must be
byte-identical to a solo ``repro analyze`` of the same trace.  After
shutdown the process must hold no leaked file descriptors, threads, or
``/dev/shm`` segments.

The event volume scales with the ``SMOKE_EVENTS`` environment variable:
small by default so the tier-1 run stays quick, cranked up in CI's
dedicated ``server-smoke`` job.
"""

import gc
import os
import threading
import time

import pytest

from repro.core.parallel import ParallelRunner
from repro.trace.live import send_trace
from repro.workloads import figure1
from repro.workloads.dacapo import dacapo_trace

from tests.test_server import _Server, solo_summary

#: Events per producer (approximate — the workload generator scales by
#: a real factor).  CI's server-smoke job sets 100000.
SMOKE_EVENTS = int(os.environ.get("SMOKE_EVENTS", "4000"))
TENANTS = 4
#: avrora at scale=1.0 generates ~25k events; derive the scale that
#: lands near SMOKE_EVENTS.
_AVRORA_EVENTS_AT_1 = 25140


def _open_fds():
    if not os.path.isdir("/proc/self/fd"):
        pytest.skip("needs /proc to count descriptors")
    gc.collect()
    fds = {}
    for name in os.listdir("/proc/self/fd"):
        try:
            fds[int(name)] = os.readlink("/proc/self/fd/" + name)
        except OSError:  # the listdir fd itself, or already closed
            pass
    return fds


def _shm_entries():
    if not os.path.isdir("/dev/shm"):
        return None
    return set(os.listdir("/dev/shm"))


def test_concurrent_producers_match_solo_and_leak_nothing(tmp_path):
    scale = max(SMOKE_EVENTS / _AVRORA_EVENTS_AT_1, 0.01)
    trace = dacapo_trace("avrora", scale=scale, cache=False)
    analyses = ("st-wdc", "fto-hb")  # two families → two worker shards
    expected = solo_summary(trace, analyses=analyses)
    names = ["smoke{}".format(i) for i in range(TENANTS)]

    # Warm up multiprocessing's one-time global state (resource tracker
    # and its pipe) so the fd baseline below measures *our* leaks only.
    tiny = figure1()
    ParallelRunner(list(analyses), tiny, workers=2).run(tiny)

    fd_before = _open_fds()
    threads_before = threading.active_count()
    shm_before = _shm_entries()

    with _Server(tmp_path, workers=2, analyses=list(analyses),
                 timeout=120.0) as srv:
        errors = []

        def produce(name):
            try:
                send_trace(trace, srv.addr, binary=True, tenant=name)
            except BaseException as exc:  # surfaced below, not swallowed
                errors.append((name, exc))

        producers = [threading.Thread(target=produce, args=(name,))
                     for name in names]
        for thread in producers:
            thread.start()
        for thread in producers:
            thread.join(timeout=600)
            assert not thread.is_alive(), "producer wedged"
        assert not errors, errors

        deadline = time.monotonic() + 600
        for name in names:
            while srv.block(name) is None:
                assert time.monotonic() < deadline, \
                    "timed out waiting for {}'s summary".format(name)
                time.sleep(0.05)
        srv.stop()

    assert srv.code == 1, srv.err.getvalue()  # races found, no failures
    for name in names:
        state, events, body = srv.block(name)
        assert state == "complete", srv.err.getvalue()
        assert events == len(trace)
        assert body == expected

    # -- leak checks: everything the server held must be gone ------------
    deadline = time.monotonic() + 30
    while len(_open_fds()) > len(fd_before) and time.monotonic() < deadline:
        time.sleep(0.1)
    fd_after = _open_fds()
    leaked_fds = {fd: target for fd, target in fd_after.items()
                  if fd not in fd_before}
    assert len(fd_after) <= len(fd_before), \
        "leaked descriptors: {}".format(leaked_fds)

    while threading.active_count() > threads_before \
            and time.monotonic() < deadline:
        time.sleep(0.1)
    assert threading.active_count() <= threads_before

    shm_after = _shm_entries()
    if shm_before is not None:
        leaked = shm_after - shm_before
        assert not leaked, "leaked /dev/shm entries: {}".format(leaked)

    assert not os.path.exists(srv.addr)
    assert not os.path.exists(srv.addr + ".lock")
    assert not os.path.exists(srv.addr + ".ctl")
