"""Focused unit tests: rule (b) queue machinery and the cost model."""

import pytest

from repro.clocks.vector_clock import VectorClock
from repro.core.rule_b import RuleBQueues
from repro.harness.model import COEFF, TraceProfile, modeled_nanos, modeled_slowdown
from repro.trace import TraceBuilder


def vc(*values):
    return VectorClock.of(values)


class TestRuleBQueues:
    def _simulate(self, style):
        """T0 acquires/releases m twice; T1 then releases once with
        ordering established to the first acquire only."""
        q = RuleBQueues(width=2, epoch_acquires=True, style=style)
        cc0 = vc(1, 0)
        q.on_acquire(0, 0, time=1, vc=cc0)
        q.on_release(0, 0, cc0, publish=vc(5, 0))
        q.on_acquire(0, 0, time=8, vc=vc(8, 0))
        q.on_release(0, 0, vc(8, 0), publish=vc(9, 0))
        # T1's release: knows T0 up to 1 -> only the first acquire matched
        cc1 = vc(1, 3)
        q.on_release(1, 0, cc1, publish=vc(1, 4))
        return cc1

    @pytest.mark.parametrize("style", ["log", "pairwise"])
    def test_pops_only_ordered_acquires(self, style):
        cc1 = self._simulate(style)
        assert cc1[0] == 5  # first release's time joined, not the second

    @pytest.mark.parametrize("style", ["log", "pairwise"])
    def test_footprint_tracks_entries(self, style):
        q = RuleBQueues(width=3, epoch_acquires=False, style=style)
        assert q.footprint_bytes() == 0
        q.on_acquire(0, 0, time=1, vc=vc(1, 0, 0))
        assert q.footprint_bytes() > 0

    def test_log_compaction_frees_consumed_entries(self):
        q = RuleBQueues(width=2, epoch_acquires=True, style="log")
        big = vc(10**9, 0)
        for k in range(300):
            q.on_acquire(0, 0, time=k + 1, vc=big)
            q.on_release(0, 0, big, publish=vc(k + 2, 0))
            # consumer 1 keeps up (well-formed: acquires before releasing)
            q.on_acquire(1, 0, time=k + 1, vc=vc(0, k + 1))
            q.on_release(1, 0, vc(10**9, 10**9), publish=vc(0, k + 2))
        assert q._acq_entries < 650  # both logs compacted below 2x300

    def test_vector_clock_entries_compare_pointwise(self):
        q = RuleBQueues(width=2, epoch_acquires=False, style="log")
        q.on_acquire(0, 0, time=1, vc=vc(1, 7))
        q.on_release(0, 0, vc(1, 7), publish=vc(3, 7))
        # consumer knows T0@1 but not the acquire's T1 component 7
        cc1 = vc(1, 0)
        q.on_release(1, 0, cc1, publish=vc(1, 1))
        assert cc1[0] == 1  # VC compare failed -> no join
        cc1b = vc(1, 9)
        q2 = RuleBQueues(width=2, epoch_acquires=False, style="log")
        q2.on_acquire(0, 0, time=1, vc=vc(1, 7))
        q2.on_release(0, 0, vc(1, 7), publish=vc(3, 7))
        q2.on_release(1, 0, cc1b, publish=vc(1, 10))
        assert cc1b[0] == 3  # ordered -> joined


class TestCostModel:
    def make_trace(self, cs=False):
        b = TraceBuilder()
        for k in range(20):
            if cs:
                b.acquire("T1", "m")
            b.write("T1", "v{}".format(k))
            if cs:
                b.release("T1", "m")
        b.read("T2", "v0")
        return b.build()

    def test_profile_counts(self):
        trace = self.make_trace(cs=True)
        p = TraceProfile(trace)
        assert p.events == len(trace)
        assert p.acquires == 20 and p.releases == 20
        assert p.nseas == 21
        assert p.s1 == 20  # only T1's writes run under a lock

    def test_lock_heavy_traces_cost_more_for_fto_than_st(self):
        trace = self.make_trace(cs=True)
        assert modeled_nanos(trace, "fto-dc") > modeled_nanos(trace, "st-dc")

    def test_lock_free_traces_narrow_the_gap(self):
        lock_free = self.make_trace(cs=False)
        locked = self.make_trace(cs=True)

        def gap(t):
            return modeled_nanos(t, "fto-dc") / modeled_nanos(t, "st-dc")

        assert gap(locked) > gap(lock_free)

    def test_unknown_program_uses_default_app(self):
        trace = self.make_trace()
        assert modeled_slowdown(trace, "fto-hb") == \
            modeled_slowdown(trace, "fto-hb", program="unknown")

    def test_coefficients_positive(self):
        assert all(v > 0 for v in COEFF.values())

    def test_relation_ordering(self):
        trace = self.make_trace(cs=True)
        for tier in ("unopt", "fto"):
            hb = modeled_nanos(trace, tier + "-hb")
            wdc = modeled_nanos(trace, tier + "-wdc")
            dc = modeled_nanos(trace, tier + "-dc")
            wcp = modeled_nanos(trace, tier + "-wcp")
            assert hb < wdc < dc, tier
            assert wdc < wcp, tier
