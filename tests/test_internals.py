"""White-box tests of under-the-hood machinery: MultiCheck, the CS-list
lifecycle, vindication's closure steps, and oracle internals."""

import pytest

from repro.clocks.epoch import pack
from repro.clocks.vector_clock import INF, VectorClock
from repro.core.cslist import CSEntry, open_entry
from repro.core.smarttrack import SmartTrackDC
from repro.oracle.closure import _critical_sections, _hard_edges, _rule_a_edges
from repro.trace import TraceBuilder
from repro.workloads import figure4a


def build(fn):
    b = TraceBuilder()
    fn(b)
    return b.build()


class TestMultiCheck:
    def _analysis(self, held=(0,)):
        trace = build(lambda b: b.read("T1", "x").read("T2", "x"))
        analysis = SmartTrackDC(trace)
        analysis.held[0] = list(held)
        return analysis

    def _entry(self, lock, owner, clock_values):
        entry = CSEntry(VectorClock.of(clock_values), lock)
        return entry

    def test_empty_list_runs_race_check_only(self):
        analysis = self._analysis()
        residual, raced = analysis._multicheck(0, (), 1, pack(5, 1))
        assert residual is None
        assert raced  # thread 0 knows nothing about thread 1

    def test_ordered_outermost_subsumes_everything(self):
        analysis = self._analysis()
        analysis.cc[0][1] = 10
        outer = self._entry(7, 1, [0, 4])  # released at u-time 4 <= 10
        inner = self._entry(8, 1, [0, INF])
        residual, raced = analysis._multicheck(0, (outer, inner), 1, pack(99, 1))
        assert residual is None and not raced

    def test_held_lock_joins_and_stops(self):
        analysis = self._analysis(held=(7,))
        release_time = VectorClock.of([0, 6])
        outer = CSEntry(release_time, 7)
        residual, raced = analysis._multicheck(0, (outer,), 1, pack(99, 1))
        assert not raced  # conflict join subsumes the race check
        assert analysis.cc[0][1] == 6  # rule (a) ordering added

    def test_unordered_unheld_goes_to_residual(self):
        analysis = self._analysis(held=())
        entry = self._entry(9, 1, [0, INF])  # open critical section
        analysis.cc[0][1] = 100
        residual, raced = analysis._multicheck(0, (entry,), 1, pack(5, 1))
        assert residual == {9: entry.clock}
        assert not raced  # epoch 5@T1 <= 100 passes

    def test_outer_residual_kept_when_inner_matches(self):
        analysis = self._analysis(held=(3,))
        outer = self._entry(9, 1, [0, INF])  # unordered, unheld
        inner = CSEntry(VectorClock.of([0, 2]), 3)  # held -> join
        residual, raced = analysis._multicheck(0, (outer, inner), 1, pack(99, 1))
        assert 9 in residual
        assert not raced


class TestCSLifecycle:
    def test_open_entry_is_infinite(self):
        entry = open_entry(width=3, t=1, m=5)
        assert entry.lock == 5
        assert entry.clock[1] == INF
        assert entry.clock[0] == 0

    def test_snapshot_shares_clock_references(self):
        trace = figure4a()
        analysis = SmartTrackDC(trace)
        analysis.run()
        # the last write's CS list entry clocks were finalized in place
        for cs in analysis._lw:
            for entry in cs or ():
                assert all(v < INF for v in entry.clock)

    def test_stack_tracks_nesting(self):
        def body(b):
            b.acquire("T1", "a").acquire("T1", "b").write("T1", "x")
        analysis = SmartTrackDC(build(body))
        analysis.run()
        assert [e.lock for e in analysis._stack[0]] == [0, 1]
        assert analysis._stack[0][1].clock[0] == INF  # still open


class TestOracleInternals:
    def test_critical_sections_record_nested_accesses_per_lock(self):
        def body(b):
            b.acquire("T1", "m").acquire("T1", "n").write("T1", "x")
            b.release("T1", "n").release("T1", "m")
        sections = _critical_sections(build(body))
        assert set(sections) == {0, 1}
        for lock, cs_list in sections.items():
            assert cs_list[0].writes == {0: [2]}, lock

    def test_rule_a_edges_cross_thread_only(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T1", "m").read("T1", "x").release("T1", "m")
        assert _rule_a_edges(build(body)) == []

    def test_rule_a_edge_targets_conflicting_access(self):
        def body(b):
            b.acquire("T1", "m").write("T1", "x").release("T1", "m")
            b.acquire("T2", "m").read("T2", "y").read("T2", "x")
            b.release("T2", "m")
        edges = _rule_a_edges(build(body))
        assert edges == [(2, 5)]  # rel(m)T1 -> rd(x)T2, not rd(y)

    def test_hard_edges_volatile_pairs(self):
        def body(b):
            b.volatile_write("T1", "v")
            b.volatile_read("T2", "v")
            b.volatile_write("T3", "v")
        edges = set(_hard_edges(build(body)))
        assert (0, 1) in edges  # wr -> rd
        assert (0, 2) in edges  # wr -> wr
        assert (1, 2) in edges  # rd -> wr
        assert (1, 0) not in edges


class TestVindicationInternals:
    def test_candidate_pairs_latest_first(self):
        from repro.vindication.vindicate import candidate_pairs

        def body(b):
            b.write("T1", "x")
            b.acquire("T1", "g").release("T1", "g")  # epoch break
            b.write("T1", "x")
            b.read("T2", "x")
        trace = build(body)
        import repro
        report = repro.detect_races(trace, "st-wdc")
        pairs = candidate_pairs(trace, report.first_race)
        assert pairs[0][0] > pairs[1][0]  # most recent partner first

    def test_lock_closure_pulls_in_earlier_release(self):
        from repro.vindication.vindicate import _construct

        # T3 depends on T2's write (last-writer), which drags T2's acquire
        # into the must-set; the lock closure must then complete T2's
        # critical section before T3's acquire of the same lock.
        def body(b):
            b.read("T1", "x")
            b.acquire("T2", "m")
            b.write("T2", "y")
            b.release("T2", "m")
            b.read("T3", "y")
            b.acquire("T3", "m")
            b.write("T3", "x")
        trace = build(body)
        witness = _construct(trace, (0, 6), None)
        assert witness is not None
        assert 3 in witness  # rel(m) by T2 included
        assert witness.index(3) < witness.index(5)  # before T3's acquire

    def test_construct_fails_when_blocking_cs_never_releases(self):
        from repro.vindication.vindicate import _construct

        def body(b):
            b.read("T1", "x")
            b.acquire("T2", "m")
            b.write("T2", "y")  # T2 never releases m
            b.acquire("T3", "n")
            b.release("T3", "n")
            b.write("T3", "x")
        trace = build(body)
        # make T3's acquire depend on m being free: rebuild with same lock
        def body2(b):
            b.read("T1", "x")
            b.acquire("T2", "m")
            b.write("T2", "y")
            b.acquire("T3", "m")  # would deadlock: m never released
            b.release("T3", "m")
            b.write("T3", "x")
        with pytest.raises(Exception):
            body2_trace = build(body2)  # ill-formed: m already held
        witness = _construct(trace, (0, 5), None)
        assert witness is not None  # the n-critical-section variant is fine


class TestCharacterizeEdgeCases:
    def test_empty_trace(self):
        from repro.trace.trace import Trace
        from repro.workloads.stats import characterize
        ch = characterize(Trace([], num_threads=1, num_locks=1, num_vars=1,
                                num_volatiles=1, num_classes=1))
        assert ch.events == 0 and ch.nseas == 0
        assert ch.pct_ge(1) == 0.0

    def test_write_then_read_same_epoch(self):
        from repro.workloads.stats import characterize

        def body(b):
            b.write("T1", "x")
            b.read("T1", "x")  # same epoch: the write covers it
        ch = characterize(build(body))
        assert ch.nseas == 1
