"""Soak/stress test: a live FIFO feed of ~1M binary events in bounded
memory.

A writer thread streams ``SOAK_EVENTS`` synthetic binary events (default
1,000,000 — the volume the paper's always-on story implies; dial it down
like ``FUZZ_COUNT``, e.g. ``SOAK_EVENTS=150000`` in CI) through a FIFO
into an incremental engine session while the test samples its own RSS
once per feed window.  Asserted properties:

* **monotonic progress** — every window advances ``events_processed``
  strictly, and the total matches what the writer sent;
* **bounded memory** — once the analyses' metadata has warmed up (first
  quarter of the run), RSS growth over the remaining three quarters
  stays far below what materializing the trace would cost (the 1M-event
  blob alone is ~megabytes; the Event objects would be ~100 MB);
* **correctness under load** — the workload is consistently
  lock-protected, so every analysis must report exactly zero races after
  a million-event soak.

Set ``SOAK_PROFILE=/path/out.json`` to dump the RSS samples (the CI
``live-smoke`` job uploads this as an artifact for trend tracking).
"""

import json
import os
import threading

from repro.core.engine import MultiRunner
from repro.core.registry import create
from repro.trace.binfmt import BinaryTraceWriter
from repro.trace.event import ACQUIRE, READ, RELEASE, WRITE, Event
from repro.trace.live import PipeTraceSource
from repro.trace.trace import TraceInfo

DEFAULT_SOAK_EVENTS = 1_000_000
SOAK_ANALYSES = ["st-wdc", "fto-hb"]
THREADS = 4
WINDOW = 65_536


def _soak_events() -> int:
    return int(os.environ.get("SOAK_EVENTS", DEFAULT_SOAK_EVENTS))


def _rss_kb():
    """Resident set size in KiB via /proc (None off Linux)."""
    try:
        with open("/proc/self/status") as fp:
            for line in fp:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return None


def synthetic_events(n: int, threads: int = THREADS):
    """>= n well-formed, race-free events, generated lazily.

    Each thread cycles acquire→write→read→release on its own lock and
    variable, with every 7th block also touching one shared variable
    under a single global lock — consistently protected, so a correct
    analysis reports nothing, and the cross-thread HB edges keep the
    clocks honestly busy.
    """
    shared_lock = threads
    shared_var = threads
    produced = 0
    block = 0
    while produced < n:
        t = block % threads
        yield Event(t, ACQUIRE, t, 1)
        yield Event(t, WRITE, t, 2)
        yield Event(t, READ, t, 3)
        yield Event(t, RELEASE, t, 4)
        produced += 4
        if block % 7 == 0:
            yield Event(t, ACQUIRE, shared_lock, 5)
            yield Event(t, WRITE, shared_var, 6)
            yield Event(t, RELEASE, shared_lock, 7)
            produced += 3
        block += 1


def soak_info(threads: int = THREADS) -> TraceInfo:
    return TraceInfo(num_threads=threads, num_locks=threads + 1,
                     num_vars=threads + 1)


def _stream_writer(path: str, n: int, errors: list) -> None:
    try:
        with open(path, "wb") as fp:
            writer = BinaryTraceWriter(fp, soak_info())
            for event in synthetic_events(n):
                writer.write(event)
            writer.flush()
            errors.append(("ok", writer.events_written))
    except Exception as exc:  # surfaced by the main thread's assert
        errors.append(("error", exc))


def test_live_fifo_soak(tmp_path):
    n = _soak_events()
    path = str(tmp_path / "soak.fifo")
    os.mkfifo(path)
    outcome: list = []
    writer = threading.Thread(target=_stream_writer, args=(path, n, outcome),
                              daemon=True)
    writer.start()

    samples = []
    progress = []
    source = PipeTraceSource(path, timeout=120)
    with source:
        info = source.require_info()
        runner = MultiRunner([create(name, info) for name in SOAK_ANALYSES])
        session = runner.session()
        feed = iter(source)
        while True:
            seen = session.events_processed
            races = session.feed(feed, max_events=WINDOW)
            assert races == [], "soak workload is race-free"
            now = session.events_processed
            if now == seen:
                break
            progress.append(now)
            rss = _rss_kb()
            if rss is not None:
                samples.append({"events": now, "rss_kb": rss})
        result = session.finish()
    writer.join(120)
    assert outcome and outcome[0][0] == "ok", outcome
    sent = outcome[0][1]
    assert sent >= n

    # monotonic progress, and nothing lost end to end
    assert progress == sorted(set(progress))
    assert result.events_processed == sent == source.events_read
    assert result.ok
    for name in SOAK_ANALYSES:
        assert result.report(name).dynamic_count == 0, name

    profile = {
        "events": result.events_processed,
        "analyses": SOAK_ANALYSES,
        "window": WINDOW,
        "samples": samples,
    }
    out = os.environ.get("SOAK_PROFILE")
    if out:
        with open(out, "w") as fp:
            json.dump(profile, fp, indent=2)

    # bounded memory: after the first-quarter warmup, the remaining 3/4
    # of the stream must not grow RSS meaningfully (64 MB is orders of
    # magnitude below materializing the events)
    if len(samples) >= 8:
        warm = samples[len(samples) // 4]["rss_kb"]
        peak = max(s["rss_kb"] for s in samples[len(samples) // 4:])
        assert peak - warm < 64 * 1024, profile
