"""Multiprocess sharding: ParallelRunner correctness and failure paths.

The contract under test (DESIGN.md §6): a sharded pass produces reports
*bit-identical* to the serial single-pass engine on the same events —
across worker counts, transports, and the sampling path — and a worker
process dying mid-stream degrades exactly like a detached analysis
(partial results for the survivors, ``result.ok`` False, the CLI's
exit-2 path).  The heavier randomized parallel==serial sweep lives in
``tests/test_fuzz_differential.py``.
"""

import os

import pytest

from repro.core.engine import MultiRunner, run_stream
from repro.core.parallel import (
    ParallelRunner,
    RemoteAnalysisError,
    WorkerDied,
    plan_shards,
    run_parallel,
)
from repro.core.registry import MAIN_MATRIX, create, relation_of
from repro.trace.format import dump_trace
from repro.workloads import WorkloadSpec, generate_trace
from tests.conftest import ALL_ANALYSES


def _key(report):
    return [(r.index, r.var, r.tid, r.access, r.kinds) for r in report.races]


@pytest.fixture(scope="module")
def workload():
    return generate_trace(WorkloadSpec(
        name="parallel-test", threads=6, events=12000,
        predictive_races=2, hb_races=2, seed=11))


@pytest.fixture(scope="module")
def serial(workload):
    result = MultiRunner(
        [create(name, workload) for name in MAIN_MATRIX]).run(workload)
    assert result.ok
    return result


class TestShardPlanning:
    def test_families_stay_atomic(self):
        shards = plan_shards(ALL_ANALYSES, 4)
        by_name = [[ALL_ANALYSES[p] for p in shard] for shard in shards]
        for family in ("hb", "wcp"):
            homes = {i for i, shard in enumerate(by_name)
                     if any(relation_of(n) == family for n in shard)}
            assert len(homes) == 1, (family, by_name)

    def test_spread_balances_load(self):
        shards = plan_shards(ALL_ANALYSES, 4)
        sizes = sorted(len(s) for s in shards)
        assert sum(sizes) == len(ALL_ANALYSES)
        assert sizes[-1] - sizes[0] <= 1

    def test_workers_clamped_to_analyses(self):
        assert plan_shards(["st-wdc"], 8) == [[0]]
        runner = ParallelRunner(["st-wdc", "st-dc"],
                                generate_trace(WorkloadSpec(
                                    name="tiny", threads=2, events=50,
                                    predictive_races=0, hb_races=0,
                                    seed=1)),
                                workers=16)
        assert runner.workers == 2
        assert len(runner.shards) == 2

    def test_empty_shards_dropped(self):
        # 3 hb + 1 dc with 4 workers: the hb family is atomic, so only
        # two shards can be non-empty
        shards = plan_shards(["unopt-hb", "ft2", "fto-hb", "st-dc"], 4)
        assert all(shards)
        assert len(shards) == 2

    def test_every_position_assigned_exactly_once(self):
        for workers in (1, 2, 3, 4, 7, 11):
            shards = plan_shards(ALL_ANALYSES, workers)
            flat = sorted(p for shard in shards for p in shard)
            assert flat == list(range(len(ALL_ANALYSES))), workers

    def test_unknown_name_rejected_eagerly(self, workload):
        with pytest.raises(ValueError, match="unknown analysis"):
            ParallelRunner(["no-such-analysis"], workload)


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_full_matrix(self, workload, serial, workers):
        result = ParallelRunner(MAIN_MATRIX, workload,
                                workers=workers).run(workload)
        assert result.ok, result.failures
        assert result.events_processed == serial.events_processed
        for name in MAIN_MATRIX:
            assert _key(result.report(name)) == _key(serial.report(name)), \
                name
            assert result.report(name).events_processed == \
                serial.report(name).events_processed

    def test_shard_of_size_one(self, workload):
        solo = create("st-wdc", workload).run()
        result = ParallelRunner(["st-wdc"], workload, workers=1).run(workload)
        assert result.ok
        assert _key(result.report("st-wdc")) == _key(solo)

    def test_pickle_transport(self, workload, serial, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "pickle")
        result = ParallelRunner(MAIN_MATRIX, workload,
                                workers=3).run(workload)
        assert result.ok
        for name in MAIN_MATRIX:
            assert _key(result.report(name)) == _key(serial.report(name))

    def test_sampling_path_matches_solo_peaks(self, workload):
        # sampling disables the parent's same-epoch filter (as in the
        # serial engine) and the peaks are measured inside the workers
        result = ParallelRunner(MAIN_MATRIX, workload, workers=2,
                                sample_every=1024).run(workload)
        assert result.ok
        solo = create("st-wdc", workload).run(sample_every=1024)
        report = result.report("st-wdc")
        assert _key(report) == _key(solo)
        assert report.peak_footprint_bytes == solo.peak_footprint_bytes > 0

    def test_streamed_file_source(self, workload, serial, tmp_path):
        path = str(tmp_path / "t.bin")
        with open(path, "wb") as fp:
            dump_trace(workload, fp, binary=True)
        result = run_parallel(path, MAIN_MATRIX, workers=3)
        assert result.ok
        assert result.events_processed == len(workload)
        for name in MAIN_MATRIX:
            assert _key(result.report(name)) == _key(serial.report(name))

    def test_run_stream_workers_param(self, workload, serial, tmp_path):
        path = str(tmp_path / "t.trace")
        with open(path, "w") as fp:
            dump_trace(workload, fp)
        result = run_stream(path, MAIN_MATRIX, workers=2)
        assert result.ok
        for name in MAIN_MATRIX:
            assert _key(result.report(name)) == _key(serial.report(name))

    def test_incremental_drain_reassembles(self, workload):
        runner = ParallelRunner(MAIN_MATRIX, workload, workers=2)
        session = runner.session()
        streamed = list(session.drain(workload, window=257))
        result = session.finish()
        assert result.ok
        for name in MAIN_MATRIX:
            incremental = [(r.index, r.var, r.tid, r.access, r.kinds)
                           for n, r in streamed if n == name]
            assert incremental == _key(result.report(name)), name


class TestWorkerFailure:
    def test_crash_mid_stream_partial_results(self, workload, serial):
        # shard 0 hard-exits after its first chunk: its analyses become
        # AnalysisFailures (WorkerDied), every other shard's reports
        # stay bit-identical to serial, and events_processed still
        # counts the whole decode
        runner = ParallelRunner(MAIN_MATRIX, workload, workers=3,
                                chunk_events=1024, _crash_after={0: 1})
        result = runner.run(workload)
        assert not result.ok
        dead_names = {MAIN_MATRIX[p] for p in runner.shards[0]}
        failed_names = {f.name for f in result.failures}
        assert failed_names == dead_names
        for failure in result.failures:
            assert isinstance(failure.error, WorkerDied)
        for entry in result.entries:
            if entry.failure is None:
                assert _key(entry.report) == \
                    _key(serial.report(entry.name)), entry.name
        assert result.events_processed == len(workload)

    def test_analysis_error_detaches_inside_worker(self, workload, serial):
        # an analysis that raises inside a worker is detached by that
        # worker's engine; its shard-mates survive with correct reports
        class Exploding(type(create("ft2", workload))):
            def write(self, t, x, i, site):
                if i >= 400:
                    raise RuntimeError("boom at {}".format(i))
                super().write(t, x, i, site)

        # can't ship a local class to a worker by name; instead check
        # the equivalent contract through the serial engine it reuses
        runner = MultiRunner([Exploding(workload),
                              create("st-wdc", workload)])
        result = runner.run(workload)
        assert not result.ok
        assert len(result.failures) == 1
        assert _key(result.report("st-wdc")) == _key(serial.report("st-wdc"))

    def test_remote_failure_reconstruction(self, workload):
        err = RemoteAnalysisError("ValueError('x')")
        assert "ValueError" in str(err)


class TestSourceFailure:
    def test_source_error_yields_partial_then_finishes(self, workload):
        # a live feed dying mid-stream (TraceFormatError/OSError in the
        # source iterator) must flush the decoded prefix to the workers,
        # surface their races, and leave the session finish()-able with
        # a partial summary — the serve exit-2 contract
        from repro.trace.format import TraceFormatError

        cut = 5000

        def dying_source():
            for i, event in enumerate(workload.events):
                if i == cut:
                    raise TraceFormatError("feed died")
                yield event

        runner = ParallelRunner(["st-wdc", "fto-hb"], workload, workers=2,
                                chunk_events=512)
        session = runner.session()
        streamed = []
        with pytest.raises(TraceFormatError):
            for pair in session.drain(dying_source(), window=512):
                streamed.append(pair)
        result = session.finish()
        assert result.ok  # the *analyses* survived; only the feed died
        assert result.events_processed == cut
        # the partial pass equals a serial pass over the same prefix
        prefix = MultiRunner([create("st-wdc", workload)]).run(
            workload.events[:cut])
        assert _key(result.report("st-wdc")) == \
            _key(prefix.report("st-wdc"))
        streamed_st = [(r.index, r.var, r.tid, r.access, r.kinds)
                       for n, r in streamed if n == "st-wdc"]
        assert streamed_st == _key(result.report("st-wdc"))


class TestSessionLifecycle:
    def test_single_open_session(self, workload):
        runner = ParallelRunner(["st-wdc", "fto-hb"], workload, workers=2)
        session = runner.session()
        with pytest.raises(RuntimeError, match="still open"):
            runner.session()
        session.close()
        session2 = runner.session()
        for _ in session2.drain(workload):
            pass
        result = session2.finish()
        assert result.ok

    def test_finish_twice_rejected(self, workload):
        runner = ParallelRunner(["st-wdc"], workload, workers=1)
        result = runner.run(workload)
        assert result.ok
        session = runner.session()
        for _ in session.drain(workload):
            pass
        session.finish()
        with pytest.raises(RuntimeError, match="finished"):
            session.finish()


def test_forked_workers_never_touch_resource_tracker(workload, monkeypatch):
    """Forked workers must not call into multiprocessing's resource
    tracker: its lock is a process-private heap RLock, and a fork taken
    while any other parent thread holds it (another session's shm
    register/unregister) hands the child a permanently locked copy —
    the worker then deadlocks attaching to its chunk ring.  Guard the
    tracker entry points: a child that reaches them hard-exits, which
    surfaces as a dead shard and fails the run.
    """
    import multiprocessing
    from multiprocessing import resource_tracker

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork start method on this platform")
    parent = os.getpid()

    def _guard(wrapped):
        def checked(*args, **kwargs):
            if os.getpid() != parent:  # pragma: no cover - bug path
                os._exit(86)
            return wrapped(*args, **kwargs)
        return checked

    monkeypatch.setattr(resource_tracker, "register",
                        _guard(resource_tracker.register))
    monkeypatch.setattr(resource_tracker, "ensure_running",
                        _guard(resource_tracker.ensure_running))
    result = ParallelRunner(["st-wdc", "fto-hb"], workload,
                            workers=2).run(workload)
    assert result.ok


def test_no_process_leak(workload):
    """Every worker is reaped by finish() — no zombie accumulation."""
    import multiprocessing

    before = len(multiprocessing.active_children())
    for _ in range(3):
        result = ParallelRunner(["st-wdc", "fto-hb"], workload,
                                workers=2).run(workload)
        assert result.ok
    assert len(multiprocessing.active_children()) <= before
