"""The paper's figure gallery: every claimed property, asserted.

These tests are the behavioral specification of the reproduction — each
example execution in the paper is checked against both the oracle closure
and all analysis implementations.
"""

import pytest

import repro
from repro.oracle import compute_closure, has_predictable_race, racy_vars
from repro.workloads import figures as F

ALL = ["unopt-hb", "ft2", "fto-hb",
       "unopt-wcp", "fto-wcp", "st-wcp",
       "unopt-dc", "fto-dc", "st-dc",
       "unopt-wdc", "fto-wdc", "st-wdc",
       "unopt-dc-g", "unopt-wdc-g"]

PREDICTIVE = [n for n in ALL if "hb" not in n and n != "ft2"]
HB_ONLY = ["unopt-hb", "ft2", "fto-hb"]


def var_names(trace, vars_):
    return sorted(trace.name_of("var", v) for v in vars_)


def analysis_racy_vars(trace, name):
    return var_names(trace, repro.detect_races(trace, name).racy_vars)


def oracle_racy_vars(trace, relation):
    return var_names(trace, racy_vars(trace, compute_closure(trace, relation)))


class TestFigure1:
    """No HB-race, but a predictable race on x found by WCP/DC/WDC."""

    def test_oracle(self):
        trace = F.figure1()
        assert oracle_racy_vars(trace, "hb") == []
        for rel in ("wcp", "dc", "wdc"):
            assert oracle_racy_vars(trace, rel) == ["x"]

    @pytest.mark.parametrize("name", HB_ONLY)
    def test_hb_analyses_miss_it(self, name):
        assert analysis_racy_vars(F.figure1(), name) == []

    @pytest.mark.parametrize("name", PREDICTIVE)
    def test_predictive_analyses_find_it(self, name):
        assert analysis_racy_vars(F.figure1(), name) == ["x"]

    def test_it_is_a_predictable_race(self):
        assert has_predictable_race(F.figure1())

    def test_paper_predicted_trace_is_valid(self):
        from repro.oracle import check_predicted_trace
        # Figure 1(b) is a predicted trace of Figure 1(a): encode it as the
        # corresponding index sequence of the original and validate.
        trace = F.figure1()
        # events: 0 rd(x)T1, 1 acq T1, 2 wr(y), 3 rel, 4 acq T2, 5 rd(z),
        # 6 rel, 7 wr(x)T2; Figure 1(b) = T2's CS, then rd(x)T1; wr(x)T2.
        witness = [4, 5, 6, 0, 7]
        assert check_predicted_trace(trace, witness, require_race_pair=(0, 7))


class TestFigure2:
    """A DC-race on x that is not a WCP-race (WCP composes with HB)."""

    def test_oracle(self):
        trace = F.figure2()
        assert oracle_racy_vars(trace, "hb") == []
        assert oracle_racy_vars(trace, "wcp") == []
        assert oracle_racy_vars(trace, "dc") == ["x"]
        assert oracle_racy_vars(trace, "wdc") == ["x"]

    @pytest.mark.parametrize("name", ["unopt-wcp", "fto-wcp", "st-wcp"])
    def test_wcp_analyses_do_not_report(self, name):
        assert analysis_racy_vars(F.figure2(), name) == []

    @pytest.mark.parametrize(
        "name", ["unopt-dc", "fto-dc", "st-dc", "unopt-wdc", "fto-wdc",
                 "st-wdc", "unopt-dc-g"])
    def test_dc_family_reports(self, name):
        assert analysis_racy_vars(F.figure2(), name) == ["x"]

    def test_it_is_a_predictable_race(self):
        assert has_predictable_race(F.figure2())


class TestFigure3:
    """A WDC-race that is *not* a DC-race and not a predictable race."""

    def test_oracle(self):
        trace = F.figure3()
        assert oracle_racy_vars(trace, "hb") == []
        assert oracle_racy_vars(trace, "wcp") == []
        assert oracle_racy_vars(trace, "dc") == []
        assert oracle_racy_vars(trace, "wdc") == ["x"]

    @pytest.mark.parametrize("name", ["unopt-dc", "fto-dc", "st-dc"])
    def test_dc_rule_b_orders_it(self, name):
        assert analysis_racy_vars(F.figure3(), name) == []

    @pytest.mark.parametrize("name", ["unopt-wdc", "fto-wdc", "st-wdc"])
    def test_wdc_reports_false_race(self, name):
        assert analysis_racy_vars(F.figure3(), name) == ["x"]

    def test_not_a_predictable_race(self):
        assert not has_predictable_race(F.figure3())


class TestFigure4:
    """SmartTrack CCS behaviours (Figures 4(a)-(d)): no figure has a race
    under any relation; losing CS-list or extra metadata would create
    false races in the extended variants."""

    @pytest.mark.parametrize("fig", ["figure4a", "figure4b", "figure4c",
                                     "figure4d", "figure4b_extended",
                                     "figure4c_extended", "figure4d_extended"])
    def test_oracle_no_races(self, fig):
        trace = getattr(F, fig)()
        for rel in ("hb", "wcp", "dc", "wdc"):
            assert oracle_racy_vars(trace, rel) == [], (fig, rel)

    @pytest.mark.parametrize("fig", ["figure4a", "figure4b", "figure4c",
                                     "figure4d", "figure4b_extended",
                                     "figure4c_extended", "figure4d_extended"])
    @pytest.mark.parametrize("name", ALL)
    def test_analyses_no_false_races(self, fig, name):
        trace = getattr(F, fig)()
        assert analysis_racy_vars(trace, name) == [], (fig, name)

    def test_fig4a_smarttrack_takes_read_share_where_fto_takes_exclusive(self):
        # Paper §4.2: at Thread 2's rd(x), SmartTrack must take [Read
        # Share] (Thread 1 still holds p, so the outermost release time is
        # unknown), while FTO takes [Read Exclusive].
        trace = F.figure4a()
        st_report = repro.detect_races(trace, "st-dc", collect_cases=True)
        fto_report = repro.detect_races(trace, "fto-dc", collect_cases=True)
        assert st_report.case_counts.get("read_share", 0) >= 1
        assert fto_report.case_counts.get("read_share", 0) == 0

    @pytest.mark.parametrize("fig", ["figure4a", "figure4b", "figure4c",
                                     "figure4d", "figure4b_extended",
                                     "figure4c_extended", "figure4d_extended"])
    def test_smarttrack_tracks_dc_exactly(self, fig):
        # White-box: on race-free executions, SmartTrack-DC's final thread
        # clocks must equal FTO-DC's — the CCS optimizations change the
        # bookkeeping, not the relation (e.g. the dotted rule (a) edge of
        # Figure 4(b) must still be added).
        from repro.core.fto import FTODC
        from repro.core.smarttrack import SmartTrackDC
        trace = getattr(F, fig)()
        st = SmartTrackDC(trace)
        st.run()
        fto = FTODC(trace)
        fto.run()
        for t in range(trace.num_threads):
            assert list(st.cc[t]) == list(fto.cc[t]), (fig, t)

    @pytest.mark.parametrize("fig,ana", [
        ("figure4c", "st-dc"), ("figure4c", "st-wdc"),
        ("figure4d", "st-dc"), ("figure4d", "st-wdc")])
    def test_extra_metadata_populated(self, fig, ana):
        # White-box: T2's write outside critical sections must stash T1's
        # critical section on m into the extra metadata (paper §4.2).
        from repro.core.registry import create
        trace = getattr(F, fig)()
        analysis = create(ana, trace)
        saw_extra = {"er": False, "ew": False}
        original_write = analysis.write

        def spy_write(t, x, i, site):
            original_write(t, x, i, site)
            if analysis._er.get(x):
                saw_extra["er"] = True
            if analysis._ew.get(x):
                saw_extra["ew"] = True

        analysis.write = spy_write
        analysis.run()
        assert saw_extra["er"]


class TestFigurePredictedTraces:
    def test_figure1_predicted_is_wellformed(self):
        trace = F.figure1_predicted()
        assert len(trace) == 5

    def test_figure2_predicted_is_wellformed(self):
        trace = F.figure2_predicted()
        assert len(trace) == 4
