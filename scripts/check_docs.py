"""CI guard: the public API surface must stay documented.

Checks two things over ``repro.__all__`` (the re-exported public API):

1. every member that is a class or callable has a non-empty docstring
   (data members such as ``ANALYSIS_NAMES`` are exempt — they carry
   ``#:`` comments at their definition sites instead), and
2. the key entry points a newcomer reaches first
   (:data:`EXAMPLE_REQUIRED`) additionally carry an *example-bearing*
   docstring — a doctest (``>>>``) or a literal code block (``::``).

Run as ``python -m scripts.check_docs`` (CI does, with
``PYTHONPATH=src``); exits non-zero listing every violation, so a PR
that adds an undocumented public name fails loudly.
"""

from __future__ import annotations

import inspect
import sys

#: Dotted names whose docstring must include a runnable example
#: (``>>>`` doctest or ``::`` literal block).  These are the first
#: entry points README/quickstart users reach.
EXAMPLE_REQUIRED = (
    "detect_races",
    "detect_races_multi",
    "detect_races_stream",
    "detect_races_parallel",
    "stream_trace",
    "MultiRunner.session",
    "ParallelRunner",
    "TraceListener",
    "PipeTraceSource",
    "send_trace",
)


def _resolve(root, dotted: str):
    obj = root
    for part in dotted.split("."):
        obj = getattr(obj, part)
    return obj


def _own_doc(obj) -> str:
    """The object's docstring, ignoring ones inherited from builtins
    (``inspect.getdoc(some_list)`` would return ``list.__doc__``)."""
    if not (inspect.isclass(obj) or callable(obj) or inspect.ismodule(obj)):
        return ""  # data member; handled by the caller
    return inspect.getdoc(obj) or ""


def check(root) -> list:
    failures = []
    for name in sorted(root.__all__):
        obj = getattr(root, name, None)
        if obj is None:
            failures.append(
                "{}: listed in __all__ but not importable".format(name))
            continue
        if not (inspect.isclass(obj) or callable(obj)):
            continue  # data members (ANALYSIS_NAMES, MAIN_MATRIX, ...)
        if not _own_doc(obj).strip():
            failures.append("{}: public API member has no docstring"
                            .format(name))
    for dotted in EXAMPLE_REQUIRED:
        try:
            obj = _resolve(root, dotted)
        except AttributeError:
            failures.append(
                "{}: named in EXAMPLE_REQUIRED but not found".format(dotted))
            continue
        doc = _own_doc(obj)
        if not doc.strip():
            failures.append("{}: key entry point has no docstring"
                            .format(dotted))
        elif ">>>" not in doc and "::" not in doc:
            failures.append(
                "{}: docstring lacks an example (add a '>>>' doctest or "
                "a '::' literal block)".format(dotted))
    return failures


def main() -> int:
    import repro

    failures = check(repro)
    if failures:
        print("documentation check FAILED ({} problem(s)):"
              .format(len(failures)), file=sys.stderr)
        for line in failures:
            print("  - " + line, file=sys.stderr)
        return 1
    print("documentation check ok: {} public members, {} example-bearing "
          "entry points".format(len(repro.__all__), len(EXAMPLE_REQUIRED)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
