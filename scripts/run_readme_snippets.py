"""README smoke check: execute the quickstart code blocks.

Walks README.md, extracts every fenced ```bash and ```python code
block, and executes them in order in one shared scratch directory (so a
file recorded by an early block is visible to later ones), with
``PYTHONPATH`` pointing at ``src/``.  Fenced blocks in any other
language (```text, ```, table snippets, ...) are documentation-only and
skipped; a block preceded by an HTML comment ``<!-- snippet: skip -->``
is skipped too.

A block *passes* when it exits 0 or 1 — exit 1 is the documented
"races found" status and the quickstart deliberately finds races — and
fails the check on any other status.  Run as
``python -m scripts.run_readme_snippets [README.md]`` (CI does).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

_FENCE = re.compile(
    r"(?P<skip><!--\s*snippet:\s*skip\s*-->\s*\n)?"
    r"^```(?P<lang>bash|python)\n(?P<body>.*?)^```$",
    re.MULTILINE | re.DOTALL)

#: Exit statuses that count as success: 0 (no races) and 1 (races
#: found) are both completed runs under the documented CLI contract.
_OK = (0, 1)


def extract(markdown: str):
    """Yield ``(lang, body)`` for every runnable fenced block."""
    for match in _FENCE.finditer(markdown):
        if match.group("skip"):
            continue
        yield match.group("lang"), match.group("body")


def run_blocks(readme_path: str) -> int:
    with open(readme_path) as fp:
        blocks = list(extract(fp.read()))
    if not blocks:
        print("error: no runnable code blocks found in {}".format(
            readme_path), file=sys.stderr)
        return 1
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    src = os.path.join(repo_root, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    failures = 0
    with tempfile.TemporaryDirectory(prefix="readme-snippets-") as cwd:
        for index, (lang, body) in enumerate(blocks, 1):
            label = "block {}/{} [{}]".format(index, len(blocks), lang)
            if lang == "python":
                argv = [sys.executable, "-c", body]
            else:
                # `python` inside README blocks must mean *this* python
                shim_dir = os.path.join(cwd, ".bin")
                os.makedirs(shim_dir, exist_ok=True)
                shim = os.path.join(shim_dir, "python")
                if not os.path.exists(shim):
                    with open(shim, "w") as fp:
                        fp.write("#!/bin/sh\nexec {} \"$@\"\n".format(
                            sys.executable))
                    os.chmod(shim, 0o755)
                env["PATH"] = shim_dir + os.pathsep + env.get("PATH", "")
                argv = ["bash", "-c", body]
            proc = subprocess.run(argv, cwd=cwd, env=env,
                                  capture_output=True, text=True,
                                  timeout=600)
            if proc.returncode in _OK:
                print("{}: ok (exit {})".format(label, proc.returncode))
            else:
                failures += 1
                print("{}: FAILED (exit {})".format(label, proc.returncode),
                      file=sys.stderr)
                print("--- snippet ---\n" + body, file=sys.stderr)
                print("--- stdout ---\n" + proc.stdout, file=sys.stderr)
                print("--- stderr ---\n" + proc.stderr, file=sys.stderr)
    if failures:
        print("{} of {} README block(s) failed".format(
            failures, len(blocks)), file=sys.stderr)
        return 1
    print("all {} README block(s) executed".format(len(blocks)))
    return 0


def main() -> int:
    readme = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "README.md")
    return run_blocks(readme)


if __name__ == "__main__":
    sys.exit(main())
