"""Repository tooling invoked as ``python -m scripts.<name>`` (CI and
developer checks; not part of the installable ``repro`` package)."""
