#!/usr/bin/env python
"""Online race detection over a live socket feed.

The offline workflow (see ``offline_trace_analysis.py``) records a trace
and re-analyzes it later; this example runs the analysis *while the
execution streams*, the paper's "always-on" deployment story (§1, §4.3):

1. a producer thread plays a recorded execution into a Unix socket in
   the v2 binary wire format (``repro.trace.live.send_trace`` — any
   recorder writing either trace format works, e.g. ``repro generate
   --to-socket``),
2. the consumer accepts the one allowed connection, opens an
   incremental engine session (``MultiRunner.session()``), and drains
   the feed in bounded windows — every race is printed the moment the
   analysis finds it, with a cheap ``snapshot()`` progress line in
   between, and
3. ``finish()`` seals the pass; the reports are identical to what
   ``repro.detect_races`` computes offline on the same events.

The CLI equivalent is ``python -m repro serve /tmp/repro.sock`` in one
shell and ``python -m repro generate --program xalan --to-socket
/tmp/repro.sock`` in another.
"""

import os
import tempfile
import threading

import repro
from repro.core.engine import MultiRunner
from repro.core.registry import create
from repro.trace.live import TraceListener, send_trace
from repro.workloads import generate_trace, WorkloadSpec

ANALYSES = ["st-wdc", "fto-hb"]
WINDOW = 512  # events per incremental feed; smaller = lower latency


def main():
    spec = WorkloadSpec(name="service", threads=4, events=6000,
                        predictive_races=2, seed=77)
    execution = generate_trace(spec)

    endpoint = os.path.join(tempfile.mkdtemp(), "repro.sock")
    listener = TraceListener(endpoint)
    print("listening on {}".format(listener.describe()))

    producer = threading.Thread(
        target=send_trace, args=(execution, endpoint), daemon=True)
    producer.start()

    source = listener.accept(timeout=30)
    with source:
        info = source.require_info()
        print("producer connected: {} threads, ~{} events declared".format(
            info.num_threads, info.num_events))
        runner = MultiRunner([create(name, info) for name in ANALYSES])
        session = runner.session()
        feed = iter(source)
        while True:
            seen = session.events_processed
            for name, race in session.feed(feed, max_events=WINDOW):
                print("  [live] {:<8} race at event {:>5}: T{} {} of x{}"
                      .format(name, race.index, race.tid, race.access,
                              race.var))
            if session.events_processed == seen:
                break  # clean EOF: the producer finished
            snap = session.snapshot()
            print("  ... {} events analyzed, {} dynamic races so far".format(
                snap.events_processed, sum(snap.dynamic_counts.values())))
        result = session.finish()
    producer.join()

    print("final (online):")
    for name in ANALYSES:
        report = result.report(name)
        print("  {:<8} {} static / {} dynamic".format(
            name, report.static_count, report.dynamic_count))

    # the online pass reports exactly what the offline pass would
    for name in ANALYSES:
        offline = repro.detect_races(execution, name)
        assert [(r.index, r.var) for r in result.report(name).races] == \
            [(r.index, r.var) for r in offline.races]
    print("online == offline: verified")


if __name__ == "__main__":
    main()
