#!/usr/bin/env python
"""Run the full Table 1 analysis matrix over one synthetic workload.

Shows per-analysis run time, metadata footprint, and race counts — the
coverage/soundness/performance trade-off the paper's evaluation explores
(weaker relations find more races; SmartTrack makes them all cheap).
"""

import time

import repro
from repro.workloads import dacapo_trace


def main():
    trace = dacapo_trace("xalan", scale=0.5)
    print("workload: xalan-analog, {} events, {} threads".format(
        len(trace), trace.num_threads))
    print("{:<12} {:>9} {:>12} {:>8} {:>9}".format(
        "analysis", "time(s)", "metadata", "static", "dynamic"))
    for name in repro.MAIN_MATRIX:
        t0 = time.perf_counter()
        report = repro.detect_races(trace, name,
                                    sample_footprint_every=4096)
        dt = time.perf_counter() - t0
        print("{:<12} {:>9.3f} {:>11}K {:>8} {:>9}".format(
            name, dt, report.peak_footprint_bytes // 1024,
            report.static_count, report.dynamic_count))
    print()
    print("Note how the HB analyses miss the predictive races (static")
    print("count), and how SmartTrack (st-*) shrinks the predictive")
    print("analyses' metadata compared with unopt-*/fto-*.")


if __name__ == "__main__":
    main()
