#!/usr/bin/env python
"""Record once, analyze offline — the paper's §4.3 deployment story.

A recorded execution is serialized to the compact v2 *binary* trace
format (``repro.trace.binfmt`` — varint events, >2x faster to ingest
than the v1 text format; ``repro convert`` translates between the two)
and then re-analyzed in three passes of increasing cost:

1. a *streaming* cheap pass (SmartTrack-WDC fed straight from the lazily
   decoded file — the format is autodetected and the full trace is never
   materialized, so this step works on captures of any size),
2. only because a race was found, a materializing reload, and
3. a replay with the constraint-graph configuration to vindicate it.
"""

import os
import tempfile

import repro
from repro.core.unopt import UnoptWDC
from repro.trace import dump_trace, load_trace
from repro.vindication import vindicate
from repro.workloads import generate_trace, WorkloadSpec


def main():
    spec = WorkloadSpec(name="service", threads=4, events=4000,
                        predictive_races=1, seed=2024)
    recorded = generate_trace(spec)

    path = os.path.join(tempfile.mkdtemp(), "recorded.trace")
    with open(path, "wb") as fp:
        dump_trace(recorded, fp, binary=True)
    print("recorded {} events to {} ({} bytes, v2 binary)".format(
        len(recorded), path, os.path.getsize(path)))

    # Streaming cheap pass: events are decoded a chunk at a time and fed
    # to the analysis; memory stays bounded by analysis metadata.  The
    # reader autodetects the binary format from the leading bytes.
    streamed = repro.detect_races_stream(path, ["st-wdc"])
    cheap = streamed.report("st-wdc")
    print("cheap streaming pass (st-wdc): {} static / {} dynamic races "
          "over {} events".format(cheap.static_count, cheap.dynamic_count,
                                  streamed.events_processed))
    if not cheap.races:
        return

    # Replay with the constraint graph only now (Table 3's "w/ G" cost);
    # vindication needs the materialized trace.
    replayed = load_trace(path)
    analysis = UnoptWDC(replayed, build_graph=True)
    report = analysis.run()
    result = vindicate(replayed, report.first_race, graph=analysis.graph)
    print("replay pass (unopt-wdc w/G): graph has {} edges".format(
        analysis.graph.num_edges))
    print("vindication: {}".format(result.verdict))


if __name__ == "__main__":
    main()
