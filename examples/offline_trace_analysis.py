#!/usr/bin/env python
"""Record once, analyze offline — the paper's §4.3 deployment story.

A recorded execution is serialized to the text trace format, reloaded,
and re-analyzed with a cheap detector first (SmartTrack-WDC without a
constraint graph) and then, only because a race was found, re-analyzed
with the graph-building configuration to vindicate it.
"""

import os
import tempfile

import repro
from repro.core.unopt import UnoptWDC
from repro.trace import dump_trace, load_trace
from repro.vindication import vindicate
from repro.workloads import generate_trace, WorkloadSpec


def main():
    spec = WorkloadSpec(name="service", threads=4, events=4000,
                        predictive_races=1, seed=2024)
    recorded = generate_trace(spec)

    path = os.path.join(tempfile.mkdtemp(), "recorded.trace")
    with open(path, "w") as fp:
        dump_trace(recorded, fp)
    print("recorded {} events to {}".format(len(recorded), path))

    replayed = load_trace(path)
    cheap = repro.detect_races(replayed, "st-wdc")
    print("cheap pass (st-wdc): {} static / {} dynamic races".format(
        cheap.static_count, cheap.dynamic_count))
    if not cheap.races:
        return

    # Replay with the constraint graph only now (Table 3's "w/ G" cost).
    analysis = UnoptWDC(replayed, build_graph=True)
    report = analysis.run()
    result = vindicate(replayed, report.first_race, graph=analysis.graph)
    print("replay pass (unopt-wdc w/G): graph has {} edges".format(
        analysis.graph.num_edges))
    print("vindication: {}".format(result.verdict))


if __name__ == "__main__":
    main()
