#!/usr/bin/env python
"""Vindication: separating true predictable races from false WDC races.

WDC is the cheapest predictive relation but may report races that cannot
happen in any reordering (paper Figure 3).  Vindication reconstructs a
witness execution for true races and refutes false ones, restoring
soundness (paper §3, §4.3).
"""

import repro
from repro.oracle import check_predicted_trace
from repro.workloads import figure1, figure2, figure3


def explain(name, trace, analysis):
    report = repro.detect_races(trace, analysis)
    print("{}: {} reports {} dynamic race(s)".format(
        name, analysis, report.dynamic_count))
    if not report.races:
        return
    result = repro.vindicate_first_race(trace, analysis)
    print("  vindication verdict: {}".format(result.verdict))
    if result.vindicated:
        ok = check_predicted_trace(trace, result.witness,
                                   require_race_pair=result.pair)
        print("  witness validates as a predicted trace: {}".format(ok))
        print("  witness (original-event indices): {}".format(result.witness))
    print()


def main():
    explain("Figure 1 (true predictable race, HB-ordered)",
            figure1(), "st-wdc")
    explain("Figure 2 (true DC race, WCP-ordered)", figure2(), "st-dc")
    explain("Figure 3 (false WDC race: rule (b) matters)",
            figure3(), "st-wdc")
    print("Figure 3's race is refuted: no reordering can make the")
    print("accesses adjacent, exactly as the paper argues (§3).")


if __name__ == "__main__":
    main()
