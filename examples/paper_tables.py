#!/usr/bin/env python
"""Regenerate the paper's headline table (Table 4) at a small scale.

Equivalent to `python -m repro.harness.runner --table 4 --scale 0.3`;
see benchmarks/ for the full per-table harness.
"""

from repro.harness.measure import Measurements
from repro.harness.tables import headline_summary, table4


def main():
    meas = Measurements(scale=0.3)
    text, data = table4(meas)
    print(text)
    print(headline_summary(data)[0])


if __name__ == "__main__":
    main()
