#!/usr/bin/env python
"""Quickstart: detect a predictable race that happens-before misses.

Builds the paper's Figure 1 execution: two threads access ``x`` without
synchronization between the accesses themselves, but an unrelated pair of
critical sections on the same lock happens to order them in the observed
run.  HB analysis (FastTrack) therefore misses the race; the predictive
analyses (WCP/DC/WDC) catch it, and vindication produces the reordered
execution (the paper's Figure 1(b)) proving the race can really happen.
"""

import repro
from repro.trace import TraceBuilder


def build_trace():
    b = TraceBuilder()
    b.read("T1", "x")        # unprotected read ...
    b.acquire("T1", "m")
    b.write("T1", "y")       # ... followed by unrelated locked work
    b.release("T1", "m")
    b.acquire("T2", "m")
    b.read("T2", "z")        # T2's lock use doesn't conflict with T1's
    b.release("T2", "m")
    b.write("T2", "x")       # unprotected write: a predictable race!
    return b.build()


def main():
    trace = build_trace()
    print("Trace ({} events):".format(len(trace)))
    for i, e in enumerate(trace.events):
        print("  {:>2}  T{}  {}({})".format(
            i, e.tid + 1, {0: "rd", 1: "wr", 2: "acq", 3: "rel"}[e.kind],
            trace.name_of("var" if e.kind < 2 else "lock", e.target)))
    print()

    for name in ("fto-hb", "st-wcp", "st-dc", "st-wdc"):
        report = repro.detect_races(trace, name)
        verdict = ("MISSED" if report.dynamic_count == 0
                   else "{} race(s) on {}".format(
                       report.dynamic_count,
                       sorted(trace.name_of("var", v)
                              for v in report.racy_vars)))
        print("{:<10} -> {}".format(name, verdict))

    print()
    result = repro.vindicate_first_race(trace, "st-wdc")
    print("Vindication:", result.verdict)
    print("Witness reordering (event indices):", result.witness)
    print("Reordered execution:")
    for idx in result.witness:
        e = trace.events[idx]
        print("  T{}  {}({})".format(
            e.tid + 1, {0: "rd", 1: "wr", 2: "acq", 3: "rel"}[e.kind],
            trace.name_of("var" if e.kind < 2 else "lock", e.target)))


if __name__ == "__main__":
    main()
